"""CGI demand profiles — the paper's synthetic replacements for logged CGI.

"For the UCB trace, we use a CGI script from the WebSTONE benchmark ...
these CGI requests are CPU intensive.  For the KSU library-searching
requests, we ... replaced the CGI library requests with WebGlimpse commands
... on average 90% of service time is spent searching index information in
memory.  For the ADL trace, we replicated a small ADL catalog database ...
This workload is I/O intensive with about 90% of the servicing time consumed
by disk accesses."

A profile fixes the *shape* of a dynamic request: its CPU weight ``w``, the
per-request jitter of that weight, the variability of its total demand, and
its memory footprint.  The total demand *scale* is set by the experiment's
``r`` (ratio of CGI to static service rates), not by the profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True, slots=True)
class CGIProfile:
    """Statistical shape of one CGI request family."""

    name: str
    #: Mean fraction of service demand spent on the CPU.
    w_cpu: float
    #: Std-dev of the per-request CPU weight (truncated to [0.02, 0.98]).
    w_jitter: float
    #: Coefficient of variation of the total demand (lognormal).
    demand_cv: float
    #: Mean working-set size in 8 KB pages.
    mem_pages_mean: float
    #: Lognormal sigma of the working-set size.
    mem_pages_sigma: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.w_cpu < 1.0:
            raise ValueError("w_cpu must be in (0, 1)")
        if self.w_jitter < 0 or self.demand_cv < 0:
            raise ValueError("jitter/cv must be >= 0")
        if self.mem_pages_mean <= 0 or self.mem_pages_sigma < 0:
            raise ValueError("memory parameters must be positive")

    # -- samplers -------------------------------------------------------------

    def sample_w(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-request CPU weights."""
        w = rng.normal(self.w_cpu, self.w_jitter, size=n)
        return np.clip(w, 0.02, 0.98)

    def sample_demand(self, mean_demand: float, n: int,
                      rng: np.random.Generator) -> np.ndarray:
        """Per-request total demands with the profile's variability.

        Lognormal with the requested mean and ``demand_cv``; degenerates to
        the constant ``mean_demand`` when ``demand_cv == 0``.
        """
        if mean_demand <= 0:
            raise ValueError("mean_demand must be positive")
        if self.demand_cv == 0:
            return np.full(n, mean_demand)
        sigma2 = np.log1p(self.demand_cv ** 2)
        mu = np.log(mean_demand) - sigma2 / 2.0
        return rng.lognormal(mu, np.sqrt(sigma2), size=n)

    def sample_mem_pages(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-request working-set sizes in pages (at least 1)."""
        if self.mem_pages_sigma == 0:
            pages = np.full(n, self.mem_pages_mean)
        else:
            mu = np.log(self.mem_pages_mean) - self.mem_pages_sigma ** 2 / 2.0
            pages = rng.lognormal(mu, self.mem_pages_sigma, size=n)
        return np.maximum(1, pages.round().astype(np.int64))

    @property
    def type_key(self) -> str:
        return f"cgi:{self.name}"


#: WebSTONE-style busy-spin script: nearly pure CPU (UCB replay).
WEBSTONE_SPIN = CGIProfile(
    name="spin", w_cpu=0.92, w_jitter=0.04, demand_cv=0.8,
    mem_pages_mean=192, mem_pages_sigma=0.5,
    description="WebSTONE dynamic-file generator, CPU busy-spinning (UCB)",
)

#: WebGlimpse index search: ~90 % CPU, in-memory index, larger footprint.
WEBGLIMPSE_SEARCH = CGIProfile(
    name="search", w_cpu=0.90, w_jitter=0.05, demand_cv=1.0,
    mem_pages_mean=384, mem_pages_sigma=0.6,
    description="WebGlimpse library search over ~10000 items (KSU)",
)

#: ADL catalog lookup: ~90 % disk I/O.
ADL_CATALOG = CGIProfile(
    name="catalog", w_cpu=0.10, w_jitter=0.04, demand_cv=0.9,
    mem_pages_mean=256, mem_pages_sigma=0.5,
    description="Alexandria Digital Library catalog query, disk-bound (ADL)",
)

#: Balanced profile for experiments that want w == 0.5 exactly.
BALANCED = CGIProfile(
    name="balanced", w_cpu=0.50, w_jitter=0.05, demand_cv=0.8,
    mem_pages_mean=224, mem_pages_sigma=0.5,
    description="Synthetic half-CPU/half-I/O CGI",
)

PROFILES: Dict[str, CGIProfile] = {
    p.name: p for p in (WEBSTONE_SPIN, WEBGLIMPSE_SEARCH, ADL_CATALOG, BALANCED)
}


def get_profile(name: str) -> CGIProfile:
    """Look up a registered profile by name.

    >>> get_profile("catalog").w_cpu
    0.1
    """
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown CGI profile {name!r}; known: {sorted(PROFILES)}"
        ) from None
