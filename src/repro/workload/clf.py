"""Apache Common/Combined Log Format import.

The paper's traces were server access logs.  Anyone holding a real log can
replay it through this adapter: each line becomes a
:class:`~repro.workload.request.Request`, with service demands synthesised
the same way the paper synthesised them (the log tells you *when*, *what
kind* and *how big* — never how many CPU/disk seconds the backend burned,
which is why the paper replaced request bodies in the first place).

Classification: a request is dynamic when its URL matches any of the
``dynamic_patterns`` (default: ``/cgi-bin/``, ``.cgi``, ``.pl``, ``.php``,
``.asp`` or a query string) — the same URL-shape heuristic trace studies
of the era used.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.workload.cgi_profiles import get_profile
from repro.workload.request import Request, RequestKind
from repro.workload.specweb import MEAN_FILE_SIZE

#: host ident user [time] "request" status bytes   (+ optional combined tail)
_CLF_RE = re.compile(
    r'^(?P<host>\S+) (?P<ident>\S+) (?P<user>\S+) '
    r'\[(?P<time>[^\]]+)\] '
    r'"(?P<method>\S+) (?P<url>\S+)(?: (?P<proto>[^"]*))?" '
    r'(?P<status>\d{3}) (?P<size>\S+)'
)

_TIME_FORMAT = "%d/%b/%Y:%H:%M:%S %z"

DEFAULT_DYNAMIC_PATTERNS = (
    r"/cgi-bin/", r"\.cgi\b", r"\.pl\b", r"\.php\b", r"\.asp\b", r"\?",
)


@dataclass(slots=True)
class CLFImportOptions:
    """Knobs for turning a log into a replayable trace."""

    #: Static service rate of the reference node (demand calibration).
    mu_h: float = 1200.0
    #: CGI-to-static service *rate* ratio (dynamic demand = 1/(mu_h*r)).
    r: float = 1.0 / 40.0
    #: CGI profile supplying the CPU/IO split and memory footprint.
    cgi_profile: str = "balanced"
    #: URL regexes marking a request dynamic.
    dynamic_patterns: Tuple[str, ...] = DEFAULT_DYNAMIC_PATTERNS
    #: Keep only these HTTP status codes (None = keep everything).
    keep_statuses: Optional[Tuple[int, int]] = (200, 399)
    #: Give dynamic requests cache keys from their normalised URL.
    assign_cache_keys: bool = False
    #: Seed for demand synthesis.
    seed: int = 0

    def validate(self) -> None:
        if self.mu_h <= 0 or self.r <= 0:
            raise ValueError("mu_h and r must be positive")
        get_profile(self.cgi_profile)
        if self.keep_statuses is not None:
            lo, hi = self.keep_statuses
            if not 100 <= lo <= hi <= 599:
                raise ValueError("keep_statuses must be a sane range")


@dataclass(slots=True)
class ParsedLine:
    """One successfully parsed access-log record."""

    timestamp: float      # unix seconds
    url: str
    status: int
    size_bytes: int
    method: str


@dataclass(slots=True)
class CLFImportResult:
    requests: List[Request]
    parsed: int
    skipped_malformed: int
    skipped_status: int
    dynamic_count: int

    @property
    def dynamic_fraction(self) -> float:
        return self.dynamic_count / len(self.requests) \
            if self.requests else 0.0


def parse_clf_line(line: str) -> Optional[ParsedLine]:
    """Parse one CLF/combined line; ``None`` when it does not match.

    >>> rec = parse_clf_line('h - - [10/Oct/1999:13:55:36 -0700] '
    ...                      '"GET /a.html HTTP/1.0" 200 2326')
    >>> (rec.url, rec.status, rec.size_bytes)
    ('/a.html', 200, 2326)
    """
    match = _CLF_RE.match(line)
    if match is None:
        return None
    try:
        when = datetime.strptime(match.group("time"), _TIME_FORMAT)
    except ValueError:
        return None
    size_raw = match.group("size")
    size = 0 if size_raw == "-" else int(size_raw)
    return ParsedLine(
        timestamp=when.timestamp(),
        url=match.group("url"),
        status=int(match.group("status")),
        size_bytes=size,
        method=match.group("method"),
    )


def _normalise_url(url: str) -> str:
    """Stable content identity for caching (strip fragments, keep query)."""
    return url.split("#", 1)[0]


def import_clf(
    lines: Union[Iterable[str], str, Path],
    options: Optional[CLFImportOptions] = None,
) -> CLFImportResult:
    """Convert an access log into a replayable request trace.

    ``lines`` may be an iterable of strings or a path to a log file.
    Arrival times are rebased so the first kept record arrives at t=0.
    """
    opts = options or CLFImportOptions()
    opts.validate()
    if isinstance(lines, (str, Path)):
        with Path(lines).open("r", encoding="utf-8", errors="replace") as fh:
            return import_clf(list(fh), opts)

    patterns = [re.compile(p) for p in opts.dynamic_patterns]
    rng = np.random.default_rng(opts.seed)
    profile = get_profile(opts.cgi_profile)

    parsed: List[ParsedLine] = []
    malformed = 0
    status_skipped = 0
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = parse_clf_line(line)
        if rec is None:
            malformed += 1
            continue
        if opts.keep_statuses is not None:
            lo, hi = opts.keep_statuses
            if not lo <= rec.status <= hi:
                status_skipped += 1
                continue
        parsed.append(rec)

    parsed.sort(key=lambda r: r.timestamp)
    requests: List[Request] = []
    dynamic_count = 0
    if parsed:
        t0 = parsed[0].timestamp
        mean_demand_dyn = 1.0 / (opts.mu_h * opts.r)
        for i, rec in enumerate(parsed):
            arrival = rec.timestamp - t0
            is_dynamic = any(p.search(rec.url) for p in patterns)
            if is_dynamic:
                dynamic_count += 1
                demand = float(profile.sample_demand(mean_demand_dyn, 1,
                                                     rng)[0])
                w = float(profile.sample_w(1, rng)[0])
                pages = int(profile.sample_mem_pages(1, rng)[0])
                requests.append(Request(
                    req_id=i, arrival_time=arrival,
                    kind=RequestKind.DYNAMIC,
                    cpu_demand=demand * w, io_demand=demand * (1 - w),
                    mem_pages=pages, size_bytes=rec.size_bytes,
                    type_key=profile.type_key,
                    cache_key=(_normalise_url(rec.url)
                               if opts.assign_cache_keys else None),
                ))
            else:
                # Fixed overhead + size-proportional part, as the
                # synthetic generator does; calibrated per reference node.
                proportional = rec.size_bytes / MEAN_FILE_SIZE
                demand = (0.5 + 0.5 * proportional) / opts.mu_h
                requests.append(Request(
                    req_id=i, arrival_time=arrival,
                    kind=RequestKind.STATIC,
                    cpu_demand=demand, io_demand=0.0,
                    mem_pages=2, size_bytes=rec.size_bytes,
                    type_key="static",
                ))
    return CLFImportResult(
        requests=requests, parsed=len(parsed),
        skipped_malformed=malformed, skipped_status=status_skipped,
        dynamic_count=dynamic_count,
    )
