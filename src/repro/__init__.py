"""repro — reproduction of "Scheduling Optimization for Resource-Intensive
Web Requests on Server Clusters" (Zhu, Smith & Yang, SPAA 1999).

Subpackages
-----------
``repro.core``
    The paper's contribution: the stretch-factor metric, the multi-class
    queuing models for the flat and master/slave architectures, Theorem 1
    (master sizing and the theta bounds), RSRC cost prediction, offline
    demand sampling, the adaptive reservation controller, and the dispatch
    policies (M/S and its ablations).
``repro.sim``
    The trace-driven cluster simulator: event engine, BSD-style CPU
    scheduler, round-robin disk, demand-paged VM, nodes, load monitor,
    cluster assembly and metrics.
``repro.workload``
    Table-1 trace specs, SPECweb96 file mix, CGI demand profiles, synthetic
    trace generation and replay helpers.
``repro.testbed``
    The noisy "hardware testbed" emulator standing in for the paper's
    6-node Sun cluster (Table 3 validation).
``repro.analysis``
    Experiment harnesses regenerating every table and figure.

Quickstart
----------
>>> from repro import Workload, optimal_masters
>>> w = Workload.from_ratios(lam=750, a=0.25, mu_h=1200, r=1/40, p=32)
>>> design = optimal_masters(w)
>>> design.m >= 1
True
"""

from repro.analysis.planner import (
    ClusterPlan,
    headroom,
    max_sustainable_rate,
    size_cluster,
)
from repro.core.caching import CachingMSPolicy, CGICache
from repro.core.hetero import (
    HeteroDesign,
    hetero_flat_stretch,
    hetero_ms_stretch,
    hetero_reservation_ratio,
    optimal_masters_hetero,
)
from repro.core.policies import (
    DNSAffinityPolicy,
    FlatPolicy,
    HeteroMSPolicy,
    LeastActivePolicy,
    MSPolicy,
    MSPrimePolicy,
    Policy,
    RedirectMSPolicy,
    Route,
    RoundRobinPolicy,
    make_ms,
    make_ms_1,
    make_ms_ns,
    make_ms_nr,
    make_policy,
)
from repro.core.queuing import (
    MSStretch,
    Workload,
    best_msprime,
    flat_stretch,
    ms_stretch,
    msprime_stretch,
)
from repro.core.reservation import ReservationConfig, ReservationController
from repro.core.rsrc import rsrc_cost, select_min_rsrc
from repro.core.sampling import DemandSampler
from repro.core.stretch import combine_stretch, improvement_percent, stretch_factor
from repro.core.theorem import (
    MSDesign,
    min_masters,
    optimal_masters,
    reservation_ratio,
    theta_bounds,
    theta_opt,
)
from repro.sim.cluster import Cluster
from repro.sim.config import (
    ConnectionConfig,
    SimConfig,
    paper_sim_config,
    testbed_sim_config,
)
from repro.sim.failures import (
    FailureInjector,
    FailurePolicy,
    RecruitmentSchedule,
)
from repro.sim.metrics import MetricsReport
from repro.workload.clf import CLFImportOptions, import_clf
from repro.workload.generator import generate_trace, trace_statistics
from repro.workload.io import load_trace, save_trace
from repro.workload.sessions import SessionConfig, sessionize
from repro.workload.replay import ReplayResult, pretrain_sampler, replay
from repro.workload.request import Request, RequestKind
from repro.workload.traces import (
    ADL,
    DEC,
    EXPERIMENT_TRACES,
    KSU,
    TRACES,
    UCB,
    get_trace,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "Policy", "Route", "FlatPolicy", "RoundRobinPolicy", "LeastActivePolicy",
    "DNSAffinityPolicy",
    "MSPolicy", "MSPrimePolicy", "RedirectMSPolicy", "HeteroMSPolicy",
    "CGICache", "CachingMSPolicy",
    "make_ms", "make_ms_ns", "make_ms_nr", "make_ms_1", "make_policy",
    "Workload", "MSStretch", "flat_stretch", "ms_stretch",
    "msprime_stretch", "best_msprime",
    "MSDesign", "optimal_masters", "theta_bounds", "theta_opt",
    "min_masters", "reservation_ratio",
    "HeteroDesign", "optimal_masters_hetero", "hetero_ms_stretch",
    "hetero_flat_stretch", "hetero_reservation_ratio",
    "rsrc_cost", "select_min_rsrc", "DemandSampler",
    "ReservationController", "ReservationConfig",
    "stretch_factor", "combine_stretch", "improvement_percent",
    "ClusterPlan", "size_cluster", "max_sustainable_rate", "headroom",
    # sim
    "Cluster", "SimConfig", "ConnectionConfig", "paper_sim_config",
    "testbed_sim_config",
    "MetricsReport",
    "FailurePolicy", "FailureInjector", "RecruitmentSchedule",
    # workload
    "Request", "RequestKind", "generate_trace", "trace_statistics",
    "replay", "ReplayResult", "pretrain_sampler",
    "save_trace", "load_trace", "import_clf", "CLFImportOptions",
    "sessionize", "SessionConfig",
    "TRACES", "EXPERIMENT_TRACES", "DEC", "UCB", "KSU", "ADL", "get_trace",
    "__version__",
]
