"""Observability: per-request tracing and trace auditing.

``repro.obs`` gives every simulated request an auditable lifecycle: the
cluster, nodes, device models, and resilience layer append structured
*span records* to a :class:`~repro.obs.trace.Tracer`, and the
:mod:`~repro.obs.audit` module replays a completed run's spans to prove
scheduler invariants (causality, single-server exclusivity, request
conservation, the theta'_2 reservation cap, and metric agreement).

The tap is opt-in and no-op when disabled: components hold a ``_tracer``
attribute that defaults to ``None``, so untraced runs pay one attribute
load per hook and the PR-2 performance gates are unaffected.
"""

from repro.obs.audit import (
    AuditReport,
    TraceAuditError,
    Violation,
    audit_cluster,
    audit_spans,
)
from repro.obs.trace import (
    SPAN_FIELDS,
    Tracer,
    iter_jsonl,
    load_jsonl,
    save_jsonl,
    span_digest,
    summarize_spans,
)

__all__ = [
    "AuditReport",
    "SPAN_FIELDS",
    "TraceAuditError",
    "Tracer",
    "Violation",
    "audit_cluster",
    "audit_spans",
    "iter_jsonl",
    "load_jsonl",
    "save_jsonl",
    "span_digest",
    "summarize_spans",
]
