"""Structured per-request span recording for the simulator.

A *span* is one immutable tuple ``(t, kind, req_id, node_id, data)``:

``t``
    Virtual engine time the event happened at.
``kind``
    One of the ``SPAN_*`` string constants below (interned literals, so
    consumers can compare with ``is`` or ``==`` interchangeably).
``req_id``
    The request the span belongs to, or ``-1`` for cluster-level meta
    spans (node failures, shed-level changes, run summaries).
``node_id``
    The node the event happened on, or ``-1`` when no node is involved
    (arrival at the dispatcher, run meta).
``data``
    Kind-specific payload tuple, or ``None``.  Payload layouts are
    documented per constant and in ``docs/observability.md``.

The tracer is deliberately dumb: components append tuples to one flat
list via :meth:`Tracer.record` and the auditor reconstructs lifecycles
offline.  There is no per-span object allocation beyond the tuple, no
locking, and no formatting on the hot path — a disabled tap costs one
``None`` attribute check per hook site.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

#: Span tuple layout, in order.
SPAN_FIELDS = ("t", "kind", "req_id", "node_id", "data")

Span = Tuple[float, str, int, int, Optional[tuple]]

# -- request lifecycle kinds --------------------------------------------------

#: Request reached the dispatcher.  data=(kind, demand).
ARRIVE = "arrive"
#: Dispatcher chose a node.  data=(remote, is_master, w, rsrc_cost,
#: gate, effective_cap, master_fraction) — the last three are None for
#: policies without a reservation controller.
DISPATCH = "dispatch"
#: Dispatcher or admission refused the request.  data=(reason,).
DENY = "deny"
#: Node accepted the request.  data=(backlogged,).
ADMIT = "admit"
#: Node began executing (left the backlog).  data=(plan_len,).
START = "start"
#: Request finished.  data=(demand, remote, on_master).
COMPLETE = "complete"
#: Resilience layer dropped the request.  data=(reason,).
DROP = "drop"
#: Resilience layer scheduled a re-submission.  data=(attempt, delay).
RETRY = "retry"
#: Deadline fired while the request was in flight.  data=None.
TIMEOUT = "timeout"
#: Request aborted in place (node crash / drain).  data=(reason,).
ABORT = "abort"
#: Request lost outright (crash with no resilience layer).  data=None.
LOST = "lost"
#: Background (recruitment-overhead) work admitted.  data=None.
BG_ADMIT = "bg_admit"

# -- device occupancy kinds ---------------------------------------------------

#: CPU started serving a slice for the request.  data=None.
CPU_ON = "cpu_on"
#: CPU stopped serving the request (slice end / preempt / abort).
CPU_OFF = "cpu_off"
#: Disk started serving a burst chunk for the request.  data=None.
IO_ON = "io_on"
#: Disk stopped serving the request.  data=None.
IO_OFF = "io_off"

# -- cluster meta kinds (req_id == node-or--1, see payloads) ------------------

#: Node failed.  node_id set; data=(aborted_count,).
NODE_FAIL = "node_fail"
#: Node recovered.  node_id set; data=None.
NODE_RECOVER = "node_recover"
#: Node drained gracefully.  node_id set; data=None.
NODE_DRAIN = "node_drain"
#: Node retired from the recruitment schedule.  node_id set; data=None.
NODE_RETIRE = "node_retire"
#: Overload shed level changed.  data=(old_level, new_level).
SHED_LEVEL = "shed_level"
#: Control-plane event (repro.control).  req_id == -1; node_id is the
#: affected node for role actions, else -1.  data is a tagged tuple:
#: ("attach", m, p, period, cooldown, min_m, max_m, theta0, own_cap),
#: ("roles", (master ids...)), ("estimate", a, r, w, rate, samples),
#: ("decision", m_target, m_current, theta_target, reason), or
#: ("action", kind, node_id, value, applied).
CONTROL = "control"
#: Engine run finished.  data=(events_processed,).
RUN = "run"

#: Kinds that end a request's lifecycle for conservation accounting.
TERMINAL_KINDS = frozenset((COMPLETE, DROP, LOST))


class Tracer:
    """Append-only span sink bound to one engine clock.

    >>> from repro.sim.engine import Engine
    >>> eng = Engine()
    >>> tr = Tracer(eng)
    >>> tr.record(ARRIVE, 7, -1, (1, 0.25))
    >>> tr.spans
    [(0.0, 'arrive', 7, -1, (1, 0.25))]
    """

    __slots__ = ("engine", "spans", "meta")

    def __init__(self, engine: Optional["Engine"] = None) -> None:
        self.engine = engine
        self.spans: List[Span] = []
        self.meta: dict = {}

    def bind(self, engine: "Engine") -> None:
        """Attach the engine whose clock timestamps every span."""
        self.engine = engine

    def record(self, kind: str, req_id: int, node_id: int,
               data: Optional[tuple] = None) -> None:
        """Append one span stamped with the engine's current time."""
        self.spans.append((self.engine.now, kind, req_id, node_id, data))

    def record_meta(self, kind: str, *data: object) -> None:
        """Append a cluster-level span with no request attached."""
        self.spans.append(
            (self.engine.now, kind, -1, -1, data if data else None))

    def clear(self) -> None:
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)


# -- serialisation ------------------------------------------------------------


def _json_default(obj: object) -> object:
    """Coerce numpy scalars (np.bool_, np.float64, ...) leaking into span
    payloads from vectorised policy code into plain Python values."""
    item = getattr(obj, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"unserialisable span payload element: {obj!r}")


def _encode(span: Span) -> str:
    t, kind, req_id, node_id, data = span
    return json.dumps(
        [t, kind, req_id, node_id, None if data is None else list(data)],
        separators=(",", ":"), default=_json_default)


def iter_jsonl(spans: Sequence[Span],
               meta: Optional[dict] = None) -> Iterable[str]:
    """Yield the JSONL representation line by line (header first, no
    trailing newlines).  Shared by :func:`save_jsonl` and network servers
    that stream a span file without touching disk (``repro.live``)."""
    header = {"format": "repro.obs/1", "fields": list(SPAN_FIELDS),
              "count": len(spans)}
    if meta:
        header["meta"] = meta
    yield json.dumps(header, separators=(",", ":"))
    for span in spans:
        yield _encode(span)


def save_jsonl(spans: Sequence[Span], path, meta: Optional[dict] = None) -> None:
    """Write spans as JSONL: one meta header line, then one span per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for line in iter_jsonl(spans, meta):
            fh.write(line + "\n")


def load_jsonl(path) -> Tuple[List[Span], dict]:
    """Read a trace written by :func:`save_jsonl`; returns (spans, header)."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        header = json.loads(header_line) if header_line.strip() else {}
        if header.get("format") != "repro.obs/1":
            raise ValueError(f"{path}: not a repro.obs/1 trace file")
        for line in fh:
            if not line.strip():
                continue
            t, kind, req_id, node_id, data = json.loads(line)
            spans.append((float(t), kind, int(req_id), int(node_id),
                          None if data is None else tuple(data)))
    return spans, header


# -- digest & summary ---------------------------------------------------------


def span_digest(spans: Iterable[Span]) -> str:
    """Order-sensitive sha256 over the span stream.

    Timestamps are rendered at fixed ``.9f`` precision so the digest is
    stable across platforms that agree to within a nanosecond of virtual
    time, while still catching any real scheduling change.
    """
    h = hashlib.sha256()
    for t, kind, req_id, node_id, data in spans:
        payload = "" if data is None else json.dumps(
            list(data), separators=(",", ":"), default=_json_default)
        h.update(f"{kind}|{req_id}|{node_id}|{t:.9f}|{payload}\n".encode())
    return h.hexdigest()


def summarize_spans(spans: Sequence[Span]) -> dict:
    """Aggregate counts + horizon for human display and quick sanity checks."""
    kinds: dict = {}
    requests = set()
    nodes = set()
    t_min = float("inf")
    t_max = float("-inf")
    for t, kind, req_id, node_id, _ in spans:
        kinds[kind] = kinds.get(kind, 0) + 1
        if req_id >= 0:
            requests.add(req_id)
        if node_id >= 0:
            nodes.add(node_id)
        if t < t_min:
            t_min = t
        if t > t_max:
            t_max = t
    return {
        "spans": len(spans),
        "requests": len(requests),
        "nodes": len(nodes),
        "t_min": t_min if spans else 0.0,
        "t_max": t_max if spans else 0.0,
        "kinds": dict(sorted(kinds.items())),
        "digest": span_digest(spans),
    }
