"""Replay a completed run's span stream and prove scheduler invariants.

The auditor consumes the flat span list a :class:`~repro.obs.trace.Tracer`
collected and checks, offline:

1. **Causality** — span timestamps never decrease, and every request's
   spans follow the lifecycle state machine (no ``start`` before
   ``admit``, no ``complete`` without ``start``, nothing after a
   terminal span).
2. **Single-server exclusivity** — each node's CPU and disk serve at
   most one process at a time: ``cpu_on``/``cpu_off`` (and
   ``io_on``/``io_off``) spans must form non-overlapping intervals per
   device.
3. **Work conservation** — terminal span counts agree with
   :meth:`repro.sim.cluster.Cluster.conservation`: every submitted
   request is completed, dropped, lost, or provably still in flight,
   and the ledger balance is zero.
4. **Reservation cap** — a dynamic request is dispatched to a master
   only while the policy's gate was open, i.e. the running
   master-admission fraction was below the effective theta'_2 cap
   (except during the emergency fallback when no slave is in service,
   which the policy reports as gate-not-applicable).
5. **Metric agreement** — per-request response and stretch recomputed
   from spans reproduce :meth:`MetricsCollector.report` exactly
   (count, mean response, mean stretch).
6. **Control consistency** — when a control plane (repro.control) was
   attached, every dispatch must agree with the configuration in force
   at its timestamp: the master-role flag matches the membership
   announced by the latest CONTROL ``roles`` span, and (when the
   controller owned the cap) the effective theta'_2 equals the last
   actuated cap times the shed scale.  Applied role actions must also
   respect the controller's cooldown and master-count clamps.

Every failed check becomes a :class:`Violation`; the run passes when the
:class:`AuditReport` carries none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.trace import (
    ABORT,
    ADMIT,
    ARRIVE,
    BG_ADMIT,
    COMPLETE,
    CONTROL,
    CPU_OFF,
    CPU_ON,
    DENY,
    DISPATCH,
    DROP,
    IO_OFF,
    IO_ON,
    LOST,
    RETRY,
    SHED_LEVEL,
    START,
    TIMEOUT,
    Span,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.cluster import Cluster
    from repro.sim.metrics import MetricsReport

#: Relative tolerance for the span-vs-metrics stretch comparison.  The two
#: paths consume bitwise-identical floats in identical order, so this only
#: absorbs summation-order differences inside numpy itself.
_RTOL = 1e-9

_DEVICE_KINDS = frozenset((CPU_ON, CPU_OFF, IO_ON, IO_OFF))

#: Lifecycle transition table: kind -> (allowed source phases, next phase).
#: Phases: new (never seen), idle (between attempts), arrived, routed,
#: admitted, executing, and the terminals done/dropped/lost.
_TRANSITIONS: Dict[str, Tuple[frozenset, str]] = {
    ARRIVE: (frozenset(("new", "idle")), "arrived"),
    DISPATCH: (frozenset(("arrived",)), "routed"),
    DENY: (frozenset(("arrived", "routed")), "idle"),
    ADMIT: (frozenset(("routed",)), "admitted"),
    START: (frozenset(("admitted",)), "executing"),
    COMPLETE: (frozenset(("executing",)), "done"),
    TIMEOUT: (frozenset(("admitted", "executing")), "idle"),
    ABORT: (frozenset(("admitted", "executing")), "idle"),
    RETRY: (frozenset(("idle", "arrived")), "idle"),
    DROP: (frozenset(("idle", "arrived")), "dropped"),
    LOST: (frozenset(("idle",)), "lost"),
}

_TERMINAL_PHASES = frozenset(("done", "dropped", "lost"))


@dataclass(slots=True)
class Violation:
    """One failed invariant check, anchored to a span."""

    check: str
    message: str
    span_index: int = -1
    req_id: int = -1

    def render(self) -> str:
        where = f" [span #{self.span_index}]" if self.span_index >= 0 else ""
        who = f" req {self.req_id}" if self.req_id >= 0 else ""
        return f"{self.check}:{who} {self.message}{where}"


@dataclass(slots=True)
class AuditReport:
    """Outcome of one audit pass over a span stream."""

    violations: List[Violation] = field(default_factory=list)
    #: Work performed, per check family (for "did it actually run" tests).
    checked: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, check: str, message: str, span_index: int = -1,
            req_id: int = -1) -> None:
        self.violations.append(Violation(check, message, span_index, req_id))

    def count(self, check: str, n: int = 1) -> None:
        self.checked[check] = self.checked.get(check, 0) + n

    def render(self, limit: int = 20) -> str:
        if self.ok:
            work = ", ".join(f"{k}={v}" for k, v in sorted(self.checked.items()))
            return f"audit OK ({work})"
        lines = [f"audit FAILED: {len(self.violations)} violation(s)"]
        for v in self.violations[:limit]:
            lines.append("  " + v.render())
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise TraceAuditError(self)


class TraceAuditError(AssertionError):
    """A trace audit found invariant violations."""

    def __init__(self, report: AuditReport):
        super().__init__(report.render())
        self.report = report


# -- individual passes --------------------------------------------------------


def _check_monotonic(spans: Sequence[Span], report: AuditReport) -> None:
    prev = float("-inf")
    for idx, span in enumerate(spans):
        t = span[0]
        if t < prev:
            report.add("causality",
                       f"time went backwards: {t:.9f} after {prev:.9f}", idx)
        elif t > prev:
            prev = t
    report.count("spans", len(spans))


def _check_lifecycle(spans: Sequence[Span], bg: set, report: AuditReport):
    """Phase machine per request.  Returns per-request bookkeeping used by
    the conservation and stretch passes: (arrival time of the first
    attempt, completion records, terminal counts, arrived ids)."""
    phase: Dict[int, str] = {}
    last_node: Dict[int, int] = {}
    first_arrive: Dict[int, float] = {}
    completions: List[Tuple[int, float, float]] = []  # (req, finish, demand)
    terminals = {"done": 0, "dropped": 0, "lost": 0}

    for idx, (t, kind, req, node, data) in enumerate(spans):
        if req < 0 or req in bg or kind in _DEVICE_KINDS:
            continue
        rule = _TRANSITIONS.get(kind)
        if rule is None:
            continue
        allowed, nxt = rule
        ph = phase.get(req, "new")
        if ph in _TERMINAL_PHASES:
            report.add("lifecycle",
                       f"span {kind!r} after terminal phase {ph!r}", idx, req)
            continue
        if ph not in allowed:
            report.add("lifecycle",
                       f"{kind!r} from phase {ph!r} "
                       f"(allowed: {sorted(allowed)})", idx, req)
            # Resynchronise so one bad span doesn't cascade.
        phase[req] = nxt
        if kind == ARRIVE:
            if req not in first_arrive:
                first_arrive[req] = t
        elif kind == DISPATCH:
            last_node[req] = node
        elif kind in (ADMIT, START):
            expected = last_node.get(req)
            if expected is not None and node != expected:
                report.add("lifecycle",
                           f"{kind!r} on node {node} but request was "
                           f"dispatched to node {expected}", idx, req)
            last_node[req] = node
        elif kind == COMPLETE:
            expected = last_node.get(req)
            if expected is not None and node != expected:
                report.add("lifecycle",
                           f"complete on node {node} but request ran on "
                           f"node {expected}", idx, req)
            terminals["done"] += 1
            demand = data[0] if data else float("nan")
            completions.append((req, t, demand))
        elif kind == DROP:
            terminals["dropped"] += 1
        elif kind == LOST:
            terminals["lost"] += 1
    report.count("requests", len(phase))
    return first_arrive, completions, terminals


def _check_exclusivity(spans: Sequence[Span], report: AuditReport,
                       complete_run: bool) -> None:
    """At most one process in service per CPU and per disk at any time.

    Span order is causal (appended in event-execution order), so a device
    is busy iff its last span was an ``*_on`` without a matching ``*_off``
    — zero-length slices at equal timestamps stay unambiguous.
    """
    open_iv: Dict[Tuple[str, int], Tuple[int, int]] = {}  # (dev, node) -> (req, idx)
    intervals = 0
    for idx, (t, kind, req, node, _) in enumerate(spans):
        if kind not in _DEVICE_KINDS:
            continue
        dev = "cpu" if kind in (CPU_ON, CPU_OFF) else "disk"
        key = (dev, node)
        if kind in (CPU_ON, IO_ON):
            held = open_iv.get(key)
            if held is not None:
                report.add("exclusivity",
                           f"{dev} on node {node} started serving while "
                           f"still serving req {held[0]} (span "
                           f"#{held[1]})", idx, req)
            open_iv[key] = (req, idx)
            intervals += 1
        else:
            held = open_iv.pop(key, None)
            if held is None:
                report.add("exclusivity",
                           f"{dev} on node {node} released with no open "
                           f"interval", idx, req)
            elif held[0] != req:
                report.add("exclusivity",
                           f"{dev} on node {node} released req {req} but "
                           f"was serving req {held[0]}", idx, req)
    if complete_run:
        for (dev, node), (req, idx) in sorted(open_iv.items()):
            report.add("exclusivity",
                       f"{dev} on node {node} still serving req {req} at "
                       f"end of run", idx, req)
    report.count("service_intervals", intervals)


def _check_reservation(spans: Sequence[Span], bg: set,
                       report: AuditReport) -> None:
    """theta'_2: dynamic work reaches a master only through an open gate."""
    checked = 0
    for idx, (t, kind, req, node, data) in enumerate(spans):
        if kind != DISPATCH or data is None or req in bg:
            continue
        # data = (remote, is_master, w, rsrc, gate, eff_cap, master_frac)
        _, is_master, _, _, gate, eff_cap, master_frac = data
        if gate is None:
            continue  # no controller, or emergency fallback (cap waived)
        checked += 1
        if gate != (master_frac < eff_cap):
            report.add("reservation",
                       f"gate verdict {gate} inconsistent with "
                       f"master_fraction={master_frac:.6f} vs "
                       f"cap={eff_cap:.6f}", idx, req)
        if is_master and not gate:
            report.add("reservation",
                       f"dynamic request placed on master node {node} while "
                       f"the reservation gate was closed "
                       f"(master_fraction={master_frac:.6f} >= "
                       f"cap={eff_cap:.6f})", idx, req)
    report.count("reservation_decisions", checked)


def _check_conservation(first_arrive: Dict[int, float], terminals: Dict[str, int],
                        conservation: Dict[str, int],
                        report: AuditReport) -> None:
    ledger_pairs = (("done", "completed"), ("dropped", "dropped"),
                    ("lost", "lost"))
    for span_key, ledger_key in ledger_pairs:
        if terminals[span_key] != conservation[ledger_key]:
            report.add("conservation",
                       f"{terminals[span_key]} {span_key!r} spans but ledger "
                       f"counts {ledger_key}={conservation[ledger_key]}")
    if conservation["balance"] != 0:
        report.add("conservation",
                   f"ledger balance {conservation['balance']} != 0: "
                   f"{conservation}")
    arrived = len(first_arrive)
    finished = sum(terminals.values())
    if arrived < finished:
        report.add("conservation",
                   f"{finished} requests reached a terminal span but only "
                   f"{arrived} ever arrived")
    if arrived > conservation["submitted"]:
        report.add("conservation",
                   f"{arrived} distinct requests arrived but only "
                   f"{conservation['submitted']} were submitted")
    if (conservation["pending"] == 0 and conservation["in_flight"] == 0
            and arrived != conservation["submitted"]):
        report.add("conservation",
                   f"run drained but {arrived} distinct arrivals != "
                   f"{conservation['submitted']} submitted")
    report.count("conservation_checks", 1)


def _check_stretch(first_arrive: Dict[int, float],
                   completions: List[Tuple[int, float, float]],
                   metrics_report: "MetricsReport",
                   report: AuditReport) -> None:
    """Per-request stretch recomputed from spans must match the collector."""
    if metrics_report.completed != len(completions):
        report.add("stretch",
                   f"{len(completions)} complete spans but the metrics "
                   f"report counted {metrics_report.completed}")
        return
    if not completions:
        report.count("stretch_samples", 0)
        return
    resp = np.empty(len(completions))
    dem = np.empty(len(completions))
    for i, (req, finish, demand) in enumerate(completions):
        arrival = first_arrive.get(req)
        if arrival is None:
            report.add("stretch", "completed request never arrived",
                       req_id=req)
            return
        resp[i] = finish - arrival
        dem[i] = demand
    mean_resp = float(resp.mean())
    mean_stretch = float(np.mean(resp / dem))
    got = metrics_report.overall
    if not np.isclose(mean_resp, got.mean_response, rtol=_RTOL, atol=0.0):
        report.add("stretch",
                   f"mean response from spans {mean_resp!r} != metrics "
                   f"{got.mean_response!r}")
    if not np.isclose(mean_stretch, got.stretch, rtol=_RTOL, atol=0.0):
        report.add("stretch",
                   f"mean stretch from spans {mean_stretch!r} != metrics "
                   f"{got.stretch!r}")
    report.count("stretch_samples", len(completions))


def _check_control(spans: Sequence[Span], bg: set,
                   report: AuditReport) -> None:
    """Dispatches agree with the control-plane configuration in force.

    Replays the CONTROL span stream (repro.control's event log) as a
    state machine — current master set, last actuated theta'_2, shed
    scale, last applied role action — and holds every subsequent
    DISPATCH span to it.  No-op on streams without CONTROL spans, so
    uncontrolled runs audit exactly as before.
    """
    masters: Optional[frozenset] = None
    cooldown: Optional[float] = None
    min_m = 1
    max_m: Optional[int] = None
    own_cap = False
    cap: Optional[float] = None
    shed_scale = 1.0
    last_role_t: Optional[float] = None
    pending_role: Optional[Tuple[str, int]] = None
    events = 0
    dispatches = 0

    for idx, (t, kind, req, node, data) in enumerate(spans):
        if kind == SHED_LEVEL and data is not None:
            shed_scale = 0.0 if data[1] >= 1 else 1.0
            continue
        if kind == CONTROL:
            events += 1
            tag = data[0]
            if tag == "attach":
                _, _, _, cooldown, c_min, c_max, theta0, c_own = data[1:]
                min_m, max_m = int(c_min), int(c_max)
                own_cap = bool(c_own)
                if own_cap:
                    cap = float(theta0)
            elif tag == "roles":
                new_masters = frozenset(int(i) for i in data[1])
                if pending_role is not None and masters is not None:
                    act, target = pending_role
                    expect = (masters | {target} if act == "promote"
                              else masters - {target})
                    if new_masters != expect:
                        report.add(
                            "control",
                            f"roles {sorted(new_masters)} do not match the "
                            f"applied {act} of node {target} from "
                            f"{sorted(masters)}", idx)
                pending_role = None
                masters = new_masters
            elif tag == "action":
                _, act_kind, act_node, value, applied = data
                if not applied:
                    continue
                if act_kind in ("promote", "demote"):
                    if (last_role_t is not None and cooldown is not None
                            and t - last_role_t < cooldown - 1e-9):
                        report.add(
                            "control",
                            f"role action {act_kind!r} at t={t:.6f} only "
                            f"{t - last_role_t:.6f}s after the previous one "
                            f"(cooldown {cooldown})", idx)
                    last_role_t = t
                    pending_role = (act_kind, int(act_node))
                    if masters is not None and max_m is not None:
                        size = (len(masters) + 1 if act_kind == "promote"
                                else len(masters) - 1)
                        if not min_m <= size <= max(max_m, len(masters)):
                            report.add(
                                "control",
                                f"{act_kind} leaves {size} masters, outside "
                                f"the clamp [{min_m}, {max_m}]", idx)
                elif act_kind == "retune_theta" and own_cap:
                    cap = float(value)
            continue
        if kind != DISPATCH or data is None or req in bg:
            continue
        # data = (remote, is_master, w, rsrc, gate, eff_cap, master_frac)
        is_master, gate, eff_cap = data[1], data[4], data[5]
        if masters is not None:
            dispatches += 1
            if bool(is_master) != (node in masters):
                report.add(
                    "control",
                    f"dispatch marked is_master={is_master} on node {node} "
                    f"but the masters in force were {sorted(masters)}",
                    idx, req)
        if own_cap and gate is not None and cap is not None:
            expected = cap * shed_scale
            if abs(eff_cap - expected) > 1e-12:
                report.add(
                    "control",
                    f"dispatch gated on cap {eff_cap!r} but the control "
                    f"plane's cap in force was {cap!r} (shed scale "
                    f"{shed_scale})", idx, req)
    if events:
        report.count("control_events", events)
        report.count("control_dispatches", dispatches)


# -- entry points -------------------------------------------------------------


def audit_spans(
    spans: Sequence[Span],
    conservation: Optional[Dict[str, int]] = None,
    metrics_report: Optional["MetricsReport"] = None,
    complete_run: bool = True,
) -> AuditReport:
    """Audit a span stream.

    Parameters
    ----------
    spans:
        The stream, in recording order (order is part of the contract:
        spans are appended in event-execution order).
    conservation:
        A :meth:`Cluster.conservation` ledger to reconcile terminal spans
        against.  Omit for standalone/loaded traces.
    metrics_report:
        A full-window (``warmup=0``) :class:`MetricsReport` to recompute
        stretch against.  Omit for standalone traces.
    complete_run:
        When true, devices still serving at the end of the stream are
        violations (the run was expected to drain).
    """
    report = AuditReport()
    bg = {span[2] for span in spans if span[1] == BG_ADMIT}
    _check_monotonic(spans, report)
    first_arrive, completions, terminals = _check_lifecycle(spans, bg, report)
    _check_exclusivity(spans, report, complete_run)
    _check_reservation(spans, bg, report)
    _check_control(spans, bg, report)
    if conservation is not None:
        _check_conservation(first_arrive, terminals, conservation, report)
    if metrics_report is not None:
        _check_stretch(first_arrive, completions, metrics_report, report)
    return report


def audit_cluster(cluster: "Cluster",
                  complete_run: bool = True) -> AuditReport:
    """Audit a traced cluster in place, with full cross-checks armed.

    The cluster must have been built with a tracer
    (``Cluster(..., tracer=Tracer())``).
    """
    tracer = cluster.tracer
    if tracer is None:
        raise ValueError("cluster was not built with a tracer")
    return audit_spans(
        tracer.spans,
        conservation=cluster.conservation(),
        metrics_report=cluster.metrics.report(),
        complete_run=complete_run,
    )
